"""Figure 16: SF vs Bingo under 128/256/512-bit links.

Paper: SF's advantage over Bingo grows with link width (1.34x at
128-bit to 1.43x at 512-bit) because wide links shrink data
serialization, making the control messages SF eliminates
proportionally more important. Compute-bound or DRAM-bound workloads
(particlefilter, nn) see little from wider links.
"""

from repro.harness import experiments, report
from repro.harness.experiments import geomean

from conftest import PROFILE, emit, run_figure


def test_fig16_linkwidth(benchmark):
    data = run_figure(
        benchmark, lambda: experiments.fig16_linkwidth(**PROFILE)
    )
    emit("fig16_linkwidth", report.render_sweep(
        data, "Figure 16 (link width, vs bingo@128)",
        report.PAPER_NOTES["fig16"],
    ))

    ratios = {}
    for width in experiments.FIG16_WIDTHS:
        ratios[width] = geomean([
            cells[("sf", width)] / cells[("bingo", width)]
            for cells in data.values()
            if cells[("bingo", width)] > 0
        ])
    # SF beats Bingo at every link width.
    for width, ratio in ratios.items():
        assert ratio > 1.0, (width, ratio)
    # And the advantage does not shrink as links widen (paper: grows).
    assert ratios[512] >= ratios[128] * 0.97, ratios
