"""Figure 19: energy vs speedup across IO4 / OOO4 / OOO8.

Paper: floating opens new tradeoffs — SF-IO4 outperforms SS-OOO8
while consuming far less energy; each core class's SF point dominates
its SS point (faster and cheaper).
"""

from repro.harness import experiments, report

from conftest import PROFILE, emit, run_figure


def test_fig19_energy_scatter(benchmark):
    points = run_figure(
        benchmark, lambda: experiments.fig19_energy_scatter(**PROFILE)
    )
    emit("fig19_energy_scatter", report.render_fig19(points))

    by_key = {(p.core, p.config): p for p in points}
    # SF dominates SS on every core: faster and no more energy.
    for core in ("io4", "ooo4", "ooo8"):
        sf = by_key[(core, "sf")]
        ss = by_key[(core, "ss")]
        assert sf.speedup > ss.speedup, core
        assert sf.energy <= ss.energy * 1.05, core
    # The headline tradeoff: SF on the small in-order core reaches
    # (at least approaches) the big OOO running SS, at a fraction of
    # the energy (paper: outright outperforms it).
    sf_io4 = by_key[("io4", "sf")]
    ss_ooo8 = by_key[("ooo8", "ss")]
    assert sf_io4.speedup > 0.6 * ss_ooo8.speedup
    assert sf_io4.energy < 0.8 * ss_ooo8.energy
    # IO4 is the cheapest class overall.
    assert by_key[("io4", "base")].energy < by_key[("ooo8", "base")].energy
